//! Chaos for the distributed fleet: workers killed mid-lease and
//! mid-shard-upload, and the coordinator itself killed and resumed.
//! In every scenario the surviving fleet must converge on a merged
//! store byte-identical to the serial write — partial shards
//! discarded, abandoned cells re-leased, journaled work reloaded.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nvsim_apps::AppScale;
use nvsim_dist::{coordinator, worker, DistConfig, WorkerConfig};
use nvsim_faults::{FaultInjector, FaultPlan};
use nvsim_obs::{EventBus, Metrics, MetricsAggregator};

const SCALE: AppScale = AppScale::Test;
const ITERATIONS: u32 = 2;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_serial_golden(dir: &Path) -> Vec<u8> {
    use nv_scavenger::dataset_store as ds;
    let dataset = nv_scavenger::collect_dataset(SCALE, ITERATIONS, 1).expect("serial run");
    let mut tables = vec![ds::meta_table(dataset.scale_divisor, dataset.iterations)];
    tables.extend(ds::table1_tables(&dataset.table1));
    tables.extend(ds::table5_tables(&dataset.table5));
    tables.extend(ds::fig2_tables(&dataset.fig2));
    tables.extend(ds::figs3_6_tables(&dataset.figs3_6));
    tables.extend(ds::fig7_tables(&dataset.fig7));
    tables.extend(ds::figs8_11_tables(&dataset.figs8_11));
    tables.extend(ds::table6_tables(&dataset.table6));
    tables.extend(ds::fig12_tables(&dataset.fig12));
    tables.extend(ds::suitability_tables(&dataset.suitability));
    tables.extend(ds::alloc_tables(&dataset.alloc));
    let bus = EventBus::disabled();
    let path = nv_scavenger::merge_into_dataset_observed(dir, tables, &bus, &bus.correlation())
        .expect("serial store write");
    std::fs::read(path).expect("read serial store")
}

fn config(store_dir: &Path, lease_ms: u64, listen: &str, resume: bool) -> DistConfig {
    DistConfig {
        scale: SCALE,
        iterations: ITERATIONS,
        listen: listen.to_string(),
        store_dir: store_dir.to_path_buf(),
        journal_dir: store_dir.join("journal"),
        resume,
        lease_ms,
        batch: 3,
        max_attempts: 10,
        shards: 2,
    }
}

fn spawn_worker(
    addr: &str,
    label: &str,
    faults: FaultInjector,
) -> std::thread::JoinHandle<Result<worker::WorkerReport, nvsim_types::NvsimError>> {
    let config = WorkerConfig {
        coordinator: addr.to_string(),
        jobs: 3,
        label: label.to_string(),
        connect_retry: Duration::from_secs(10),
    };
    std::thread::spawn(move || worker::run(&config, &faults))
}

#[test]
fn worker_deaths_mid_lease_and_mid_upload_do_not_change_the_bytes() {
    let serial_dir = tmp("serial-a");
    let dist_dir = tmp("dist-a");
    let golden = write_serial_golden(&serial_dir);

    let metrics = Metrics::enabled();
    let bus = Arc::new(
        EventBus::builder("chaos-dist-a")
            .subscribe(Box::new(MetricsAggregator::new(metrics.clone())))
            .build(),
    );
    // Short leases so abandoned cells re-queue quickly.
    let handle = coordinator::start(
        config(&dist_dir, 200, "127.0.0.1:0", false),
        bus,
        metrics.clone(),
    )
    .expect("coordinator starts");
    let addr = handle.addr().to_string();

    // One worker dies right before running its first cell (the whole
    // lease is abandoned); one dies mid-upload, tearing the shard frame
    // on the wire. Two healthy workers finish the grid.
    let casualty_cell = spawn_worker(
        &addr,
        "dies-at-cell",
        FaultPlan::parse("panic@dist.cell*1").expect("plan").injector(),
    );
    let casualty_upload = spawn_worker(
        &addr,
        "dies-uploading",
        FaultPlan::parse("torn@dist.upload*1").expect("plan").injector(),
    );
    let survivors = [
        spawn_worker(&addr, "survivor-1", FaultInjector::disabled()),
        spawn_worker(&addr, "survivor-2", FaultInjector::disabled()),
    ];

    let progress = handle.wait_complete(Duration::from_secs(600));
    assert!(progress.complete(), "grid did not settle: {progress:?}");
    assert_eq!(progress.quarantined, 0, "{progress:?}");

    // The casualties exited early, abandoning work.
    let dead = casualty_cell.join().expect("thread").expect("clean abandon");
    assert_eq!(dead.cells_done, 0, "died before its first cell");
    let torn = casualty_upload.join().expect("thread").expect("clean abandon");
    assert_eq!(torn.cells_done, 0, "died during its first upload");
    for survivor in survivors {
        survivor.join().expect("thread").expect("survivor runs");
    }

    // Both abandoned leases expired and were re-covered.
    assert!(
        metrics.counter("dist.leases.expired").get() >= 2,
        "both casualties' leases must expire"
    );
    assert_eq!(metrics.counter("dist.shards.received").get(), progress.total);

    let store_path = handle.finalize().expect("finalize");
    let merged = std::fs::read(store_path).expect("read merged store");
    assert_eq!(merged, golden, "chaos must not change the merged bytes");

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&dist_dir);
}

#[test]
fn coordinator_kill_and_resume_converges_on_identical_bytes() {
    let serial_dir = tmp("serial-b");
    let dist_dir = tmp("dist-b");
    let golden = write_serial_golden(&serial_dir);

    let metrics1 = Metrics::enabled();
    let bus1 = Arc::new(
        EventBus::builder("chaos-dist-b1")
            .subscribe(Box::new(MetricsAggregator::new(metrics1.clone())))
            .build(),
    );
    let first = coordinator::start(
        config(&dist_dir, 1000, "127.0.0.1:0", false),
        bus1,
        metrics1,
    )
    .expect("first coordinator starts");
    let addr = first.addr().to_string();

    // Workers outlive both coordinators: their connect-retry window
    // covers the kill/restart gap.
    let workers = [
        spawn_worker(&addr, "steady-1", FaultInjector::disabled()),
        spawn_worker(&addr, "steady-2", FaultInjector::disabled()),
    ];

    // Kill the coordinator once part of the grid is journaled.
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let p = first.progress();
        if p.done >= 6 {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before kill: {p:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let done_at_kill = first.progress().done;
    first.kill();

    // Restart on the same port with --resume over the same journal.
    // std listeners set SO_REUSEADDR, but give the old socket a moment
    // to finish closing.
    let metrics2 = Metrics::enabled();
    let bus2 = Arc::new(
        EventBus::builder("chaos-dist-b2")
            .subscribe(Box::new(MetricsAggregator::new(metrics2.clone())))
            .build(),
    );
    let second = (0..50)
        .find_map(|_| {
            match coordinator::start(
                config(&dist_dir, 1000, &addr, true),
                Arc::clone(&bus2),
                metrics2.clone(),
            ) {
                Ok(handle) => Some(handle),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(100));
                    None
                }
            }
        })
        .expect("second coordinator rebinds the port");

    // The journal carried the finished cells across the kill.
    assert!(
        second.progress().done >= done_at_kill,
        "resume lost journaled cells: {} < {done_at_kill}",
        second.progress().done
    );

    let progress = second.wait_complete(Duration::from_secs(600));
    assert!(progress.complete(), "grid did not settle after resume: {progress:?}");
    assert_eq!(progress.quarantined, 0, "{progress:?}");
    for thread in workers {
        thread.join().expect("thread").expect("worker survived the restart");
    }

    let store_path = second.finalize().expect("finalize after resume");
    let merged = std::fs::read(store_path).expect("read merged store");
    assert_eq!(
        merged, golden,
        "killed-and-resumed coordinator must write the same bytes"
    );

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&dist_dir);
}
