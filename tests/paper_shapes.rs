//! The paper's qualitative findings, asserted as integration tests.
//!
//! Absolute numbers depend on the proxy scale; these tests pin the
//! *shapes* the paper reports — who wins, by roughly what factor, where
//! the outliers are — at the fast `Test` scale. The bench binaries
//! regenerate the quantitative tables at the full `Bench` scale.

use nv_scavenger::experiments as ex;
use nvsim_apps::AppScale;

const SCALE: AppScale = AppScale::Test;
const ITERS: u32 = 5;

/// Table I: footprint ordering Nek5000 > CAM > S3D > GTC.
#[test]
fn table1_footprint_ordering() {
    let rows = ex::table1(SCALE).unwrap();
    let mb = |n: &str| rows.iter().find(|r| r.app == n).unwrap().rescaled_mb();
    assert!(mb("Nek5000") > mb("CAM"));
    assert!(mb("CAM") > mb("S3D"));
    assert!(mb("S3D") > mb("GTC"));
    // And within 50% of the paper's absolute (rescaled) values.
    for r in &rows {
        let rel = r.rescaled_mb() / r.paper_footprint_mb;
        assert!(
            (0.5..2.0).contains(&rel),
            "{}: rescaled {:.0} vs paper {:.0}",
            r.app,
            r.rescaled_mb(),
            r.paper_footprint_mb
        );
    }
}

/// Table V: CAM's stack ratio dominates, GTC's is lowest; Nek/CAM have
/// >70% stack shares; CAM's first iteration is write-heavier.
#[test]
fn table5_stack_shapes() {
    let rows = ex::table5(SCALE, ITERS).unwrap();
    let row = |n: &str| rows.iter().find(|r| r.app == n).unwrap().clone();
    let (nek, cam, gtc, s3d) = (row("Nek5000"), row("CAM"), row("GTC"), row("S3D"));

    // Ratios: CAM >> {Nek, S3D} > GTC, all > 1.
    assert!(cam.rw_ratio > 2.0 * nek.rw_ratio);
    assert!(cam.rw_ratio > 2.0 * s3d.rw_ratio);
    assert!(nek.rw_ratio > gtc.rw_ratio);
    assert!(s3d.rw_ratio > gtc.rw_ratio);
    assert!(gtc.rw_ratio > 1.0);

    // CAM first-iteration dip (initialization writes).
    assert!(cam.rw_ratio_first < 0.75 * cam.rw_ratio);
    // Others are steady from the start.
    assert!((nek.rw_ratio_first / nek.rw_ratio - 1.0).abs() < 0.25);

    // Shares: Nek/CAM above 70%, S3D in between, GTC lowest and < 50%.
    assert!(nek.reference_percentage > 70.0);
    assert!(cam.reference_percentage > 70.0);
    assert!(gtc.reference_percentage < 50.0);
    assert!(s3d.reference_percentage > gtc.reference_percentage);
    assert!(s3d.reference_percentage < nek.reference_percentage);
}

/// Figure 2: a large minority of CAM stack objects exceed ratio 10 and
/// cover the majority of stack references; a single object exceeds 50.
#[test]
fn fig2_cam_stack_distribution() {
    let rep = ex::fig2(SCALE, ITERS).unwrap();
    assert!(rep.objects_ratio_gt10 > 0.25 && rep.objects_ratio_gt10 < 0.6);
    assert!(rep.refs_ratio_gt10 > 0.55);
    assert!(rep.objects_ratio_gt50 > 0.0 && rep.objects_ratio_gt50 < 0.1);
    assert!(rep.refs_ratio_gt50 > 0.03 && rep.refs_ratio_gt50 < 0.2);
}

/// Figures 3–6: read-only pools exist in Nek/CAM (CAM's the largest
/// fraction); Nek has a substantial finite ratio>50 pool; most touched
/// objects have ratio > 1 except GTC's population, which is the lowest.
#[test]
fn figs3_6_pool_shapes() {
    let reports = ex::figs3_6(SCALE, ITERS).unwrap();
    let rep = |n: &str| reports.iter().find(|r| r.app == n).unwrap();
    let ro_frac =
        |r: &ex::AppObjectsReport| r.read_only_bytes as f64 / r.total_bytes.max(1) as f64;

    assert!(ro_frac(rep("CAM")) > 0.10, "CAM read-only pool");
    assert!(ro_frac(rep("Nek5000")) > 0.04, "Nek read-only pool");
    assert!(ro_frac(rep("CAM")) > ro_frac(rep("Nek5000")));
    assert!(rep("Nek5000").high_ratio_bytes > rep("CAM").high_ratio_bytes);
    let gtc_gt1 = rep("GTC").objects_ratio_gt1;
    for other in ["Nek5000", "CAM", "S3D"] {
        // GTC is the write-heavy outlier but every app has some >1 pool.
        assert!(rep(other).objects_ratio_gt1 > 0.4, "{other}");
    }
    assert!(gtc_gt1 < 1.0);
}

/// Figure 7: Nek5000 has the largest untouched pool, CAM second, S3D
/// small, GTC none (the paper omits GTC's plot entirely).
#[test]
fn fig7_untouched_pools() {
    let reports = ex::fig7(SCALE, ITERS).unwrap();
    let f = |n: &str| {
        reports
            .iter()
            .find(|r| r.app == n)
            .unwrap()
            .untouched_fraction
    };
    assert!(f("Nek5000") > 0.15);
    assert!(f("CAM") > 0.06);
    assert!(f("Nek5000") > f("CAM"));
    assert!(f("S3D") < 0.05);
    assert!(f("GTC") < 0.01);
}

/// Figures 8–11: more than 60% of objects stay within [1,2) of their
/// first-iteration behaviour; S3D and GTC are perfectly flat.
#[test]
fn figs8_11_stability() {
    let reports = ex::figs8_11(SCALE, ITERS).unwrap();
    for r in &reports {
        assert!(
            r.min_stable_fraction > 0.6,
            "{}: stable fraction {}",
            r.app,
            r.min_stable_fraction
        );
    }
    let flat = |n: &str| {
        reports
            .iter()
            .find(|r| r.app == n)
            .unwrap()
            .min_stable_fraction
    };
    assert!(flat("S3D") > 0.95);
    assert!(flat("GTC") > 0.95);
}

/// Table VI: every NVRAM saves at least ~25% power on every app, and
/// PCRAM (slowest, least loaded) draws no more than STTRAM/MRAM.
#[test]
fn table6_power_shape() {
    let rows = ex::table6(SCALE, ITERS).unwrap();
    for r in &rows {
        assert_eq!(r.normalized[0], 1.0, "{}", r.app);
        for (i, &n) in r.normalized[1..].iter().enumerate() {
            assert!(
                n < 0.85,
                "{} tech {} saves too little: {n}",
                r.app,
                i + 1
            );
            assert!(n > 0.4, "{} tech {} implausibly low: {n}", r.app, i + 1);
        }
        assert!(
            r.normalized[1] <= r.normalized[2] + 0.02,
            "{}: PCRAM above STTRAM",
            r.app
        );
        assert!(
            r.normalized[1] <= r.normalized[3] + 0.02,
            "{}: PCRAM above MRAM",
            r.app
        );
    }
}

/// Figure 12: MRAM's +20% latency is negligible, STTRAM's 2x is small,
/// PCRAM's 10x is visible but far below 10x.
#[test]
fn fig12_latency_shape() {
    let reports = ex::fig12(SCALE).unwrap();
    assert_eq!(reports.len(), 2);
    for r in &reports {
        let norm: Vec<f64> = r.points.iter().map(|p| p.normalized_runtime).collect();
        assert_eq!(norm[0], 1.0, "{}", r.app);
        assert!(norm[1] < 1.05, "{} MRAM {}", r.app, norm[1]);
        assert!(norm[2] < 1.10, "{} STTRAM {}", r.app, norm[2]);
        assert!(norm[3] >= norm[2], "{} PCRAM < STTRAM", r.app);
        assert!(norm[3] < 1.6, "{} PCRAM {}", r.app, norm[3]);
    }
}

/// Abstract claim: Nek5000 and CAM have roughly 31%/27% of their working
/// sets suitable for NVRAM; GTC has almost nothing.
#[test]
fn suitability_headline() {
    let rows = ex::suitability(SCALE, ITERS).unwrap();
    let f = |n: &str| {
        rows.iter()
            .find(|r| r.app == n)
            .unwrap()
            .category2
            .suitable_fraction()
    };
    assert!((0.20..0.45).contains(&f("Nek5000")), "Nek {}", f("Nek5000"));
    assert!((0.18..0.40).contains(&f("CAM")), "CAM {}", f("CAM"));
    assert!(f("GTC") < 0.10, "GTC {}", f("GTC"));
}
