//! The event bus's two core guarantees, end to end over the real fleet:
//!
//! 1. **Observation is free of observable side effects.** A sweep run
//!    with an enabled bus (JSONL sink attached, every lifecycle event
//!    published) produces a merged metrics snapshot and timeline shape
//!    byte-identical to the same sweep with the bus disabled — the
//!    `--events` flag can never perturb `--metrics-json`, `--timeline`
//!    or `--report` output.
//! 2. **The JSONL stream is schema-valid and complete.** Every line
//!    parses, carries the schema version, a known kind, and the run's
//!    correlation ids; sequence numbers are strictly increasing on a
//!    single worker; and the event counts reconcile exactly with the
//!    sweep grid (apps × technologies).

use nv_scavenger::{grid_points, FleetPolicy};
use nvsim_apps::AppScale;
use nvsim_faults::FaultPlan;
use nvsim_obs::{EventBus, JsonlSink, Metrics, Timeline, EVENT_SCHEMA_VERSION, KINDS};
use serde_json::Value;

const SCALE: AppScale = AppScale::Test;
const ITERS: u32 = 2;
const APPS: usize = 4;
const TECHS: usize = 4;

/// A fresh scratch file path under the system tempdir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nvsim-events-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// The timestamp-free rendition of a timeline (wall-clock `ts_ns`
/// differs between any two runs; everything else must not).
fn timeline_shape(timeline: &Timeline) -> String {
    timeline
        .events()
        .into_iter()
        .map(|e| format!("{}|{}|{}|{}|{:?}\n", e.name, e.cat, e.kind.ph(), e.tid, e.args))
        .collect()
}

/// Runs the whole fleet under `policy`, returning the merged metrics
/// JSON and timeline shape.
fn run_fleet(jobs: usize, policy: &FleetPolicy) -> (String, String) {
    let metrics = Metrics::enabled();
    let timeline = Timeline::enabled();
    let run = nv_scavenger::profile_fleet_policy(SCALE, ITERS, jobs, &metrics, &timeline, policy)
        .expect("keep-going fleet completes");
    assert_eq!(run.reports.len(), APPS);
    (metrics.snapshot().to_json(), timeline_shape(&timeline))
}

/// Parses an events file into JSON objects, validating each line
/// against the envelope schema along the way.
fn read_events(path: &std::path::Path, run_id: &str) -> Vec<Value> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {}: not JSON ({e}): {line}", lineno + 1));
        let obj = v.as_object().unwrap_or_else(|| panic!("line {}: not an object", lineno + 1));
        assert_eq!(
            obj["schema"].as_u64(),
            Some(u64::from(EVENT_SCHEMA_VERSION)),
            "line {}: schema version",
            lineno + 1
        );
        let kind = obj["kind"].as_str().expect("kind is a string");
        assert!(KINDS.contains(&kind), "line {}: unknown kind {kind}", lineno + 1);
        assert_eq!(obj["run_id"].as_str(), Some(run_id), "line {}", lineno + 1);
        assert!(obj["seq"].is_u64() && obj["ts_ns"].is_u64(), "line {}", lineno + 1);
        events.push(v);
    }
    events
}

fn count(events: &[Value], kind: &str) -> usize {
    events.iter().filter(|e| e["kind"] == kind).count()
}

#[test]
fn observed_run_is_byte_identical_to_unobserved() {
    let baseline = run_fleet(1, &FleetPolicy::default());

    let path = scratch("clean");
    let bus = EventBus::builder("run-test")
        .subscribe(Box::new(JsonlSink::create(&path).unwrap()))
        .build();
    let policy = FleetPolicy {
        events: bus.clone(),
        ..FleetPolicy::default()
    };
    let observed = run_fleet(1, &policy);
    bus.flush();

    assert_eq!(baseline.0, observed.0, "metrics snapshot must not change");
    assert_eq!(baseline.1, observed.1, "timeline shape must not change");
    assert_eq!(bus.dropped(), 0, "bounded bus must not drop at this scale");

    // The stream reconciles with the sweep grid: one sweep per app,
    // one started/finished pair per cell, nothing degraded.
    let events = read_events(&path, "run-test");
    assert_eq!(events.len() as u64, bus.published());
    let cells = grid_points(SCALE).len();
    assert_eq!(cells, APPS * TECHS);
    assert_eq!(count(&events, "sweep.started"), APPS);
    assert_eq!(count(&events, "sweep.finished"), APPS);
    assert_eq!(count(&events, "cell.started"), cells);
    assert_eq!(count(&events, "cell.finished"), cells);
    assert_eq!(count(&events, "cell.retried"), 0);
    assert_eq!(count(&events, "cell.quarantined"), 0);

    // Per-kind payloads carry what the schema promises.
    for e in &events {
        match e["kind"].as_str().unwrap() {
            "sweep.started" => assert_eq!(e["cells"].as_u64(), Some(TECHS as u64)),
            "sweep.finished" => {
                assert_eq!(e["completed"].as_u64(), Some(TECHS as u64));
                assert_eq!(e["quarantined"].as_u64(), Some(0));
            }
            "cell.started" => {
                assert_eq!(e["attempt"].as_u64(), Some(1));
                let cell = e["cell"].as_str().unwrap();
                assert!(grid_points(SCALE).contains(&cell.to_string()), "{cell}");
            }
            "cell.finished" => {
                assert!(e["transactions"].as_u64().unwrap() > 0);
                assert!(e["app"].as_str().is_some());
            }
            other => panic!("unexpected kind in a clean run: {other}"),
        }
    }

    // Single worker: sequence numbers strictly increase in file order.
    let seqs: Vec<u64> = events.iter().map(|e| e["seq"].as_u64().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
}

#[test]
fn faulted_run_streams_retry_quarantine_and_injection_events() {
    let path = scratch("chaos");
    let bus = EventBus::builder("run-chaos")
        .subscribe(Box::new(JsonlSink::create(&path).unwrap()))
        .build();
    let policy = FleetPolicy {
        retries: 0,
        events: bus.clone(),
        faults: FaultPlan::parse("panic@GTC/pcram").unwrap().injector(),
        ..FleetPolicy::default()
    };
    let (_, _) = run_fleet(1, &policy);
    bus.flush();

    let events = read_events(&path, "run-chaos");
    assert_eq!(count(&events, "fault.injected"), 1);
    assert_eq!(count(&events, "cell.quarantined"), 1);
    assert_eq!(count(&events, "cell.retried"), 0, "retries=0 means one attempt");

    let injected = events.iter().find(|e| e["kind"] == "fault.injected").unwrap();
    assert_eq!(injected["fault"].as_str(), Some("panic"));
    assert_eq!(injected["cell"].as_str(), Some("GTC/pcram"));

    let quarantined = events.iter().find(|e| e["kind"] == "cell.quarantined").unwrap();
    assert_eq!(quarantined["cell"].as_str(), Some("GTC/pcram"));
    assert_eq!(quarantined["attempts"].as_u64(), Some(1));
    assert!(
        quarantined["error"].as_str().unwrap().contains("GTC/pcram"),
        "{quarantined}"
    );

    // The quarantined cell finished nowhere: 15 finishes for 16 starts.
    assert_eq!(count(&events, "cell.started"), APPS * TECHS);
    assert_eq!(count(&events, "cell.finished"), APPS * TECHS - 1);
}

#[test]
fn parallel_observed_run_matches_serial_metrics() {
    // The byte-identity holds at any worker count; seq ordering in the
    // file does not (workers interleave), so only totals are asserted.
    let baseline = run_fleet(1, &FleetPolicy::default());
    let path = scratch("parallel");
    let bus = EventBus::builder("run-par")
        .subscribe(Box::new(JsonlSink::create(&path).unwrap()))
        .build();
    let policy = FleetPolicy {
        events: bus.clone(),
        ..FleetPolicy::default()
    };
    let observed = run_fleet(4, &policy);
    bus.flush();

    assert_eq!(baseline.0, observed.0, "metrics snapshot must not change");
    assert_eq!(baseline.1, observed.1, "timeline shape must not change");

    let events = read_events(&path, "run-par");
    assert_eq!(count(&events, "cell.finished"), APPS * TECHS);
    // Workers stamp their identity into the correlation context.
    assert!(
        events
            .iter()
            .filter(|e| e["kind"] == "cell.started")
            .all(|e| e["worker"].is_u64()),
        "cell events must carry a worker id"
    );
}
